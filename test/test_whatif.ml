(* What-if subsystem tests (DESIGN.md §16): snapshot/fork bit-fidelity
   and isolation, the Whatif_check replay oracles on sampled specs
   (both fields), the branch runner's report on a hand-checkable
   stream, the branch spec grammar, and the load generator's seeded
   determinism. *)

module Rng = Mwct_util.Rng
module Instances = Mwct_check.Instances
module WF = Mwct_check.Whatif_check.Float
module WX = Mwct_check.Whatif_check.Exact

(* ---------- the replay oracles on sampled specs, both fields ---------- *)

let seeds = [ 1; 7; 42; 1234; 20120515 ]

let families =
  [
    Instances.Whatif_branch;
    Instances.Multi_tenant;
    Instances.Capacity_tight;
    Instances.Dag_random;
  ]

let run_oracle name check =
  List.iter
    (fun family ->
      List.iter
        (fun seed ->
          let rng = Rng.create seed in
          let draw lo hi = Rng.int_in rng lo hi in
          let spec = Instances.sample draw family in
          match check spec with
          | Ok () -> ()
          | Error msg ->
            Alcotest.failf "%s (%s, seed %d): %s" name (Instances.family_name family) seed msg)
        seeds)
    families

let test_fork_identity_float () = run_oracle "fork-identity float" WF.check_fork_identity
let test_fork_identity_exact () = run_oracle "fork-identity exact" WX.check_fork_identity
let test_branch_objective_float () = run_oracle "whatif-branch float" WF.check_branch_objective
let test_branch_objective_exact () = run_oracle "whatif-branch exact" WX.check_branch_objective

(* ---------- snapshot / fork direct unit tests (float) ---------- *)

module En = WF.En
module B = Mwct_runtime.Branch.Float
module L = Mwct_runtime.Loadgen.Float
module PF = Mwct_ncv.Policy.Make (Mwct_field.Field.Float_field)

let ok = function Ok x -> x | Error e -> Alcotest.fail (En.error_to_string e)

let engine () =
  let eng =
    En.create ~capacity:4.0
      ?kinetic:(PF.engine_kinetic PF.Wdeq)
      ~policy:(PF.engine_policy PF.Wdeq) ()
  in
  for i = 0 to 5 do
    ignore
      (ok
         (En.apply eng
            (En.Submit
               {
                 id = i;
                 volume = float_of_int (i + 1);
                 weight = float_of_int (1 + (i mod 3));
                 cap = 2.0;
                 speedup = None;
                 deps = [];
               })))
  done;
  ignore (ok (En.apply eng (En.Advance 0.5)));
  eng

(* A fork is a different engine with the same state: advancing the fork
   must not move the parent or a sibling fork, and the straight-line
   futures agree. *)
let test_fork_isolation () =
  let parent = engine () in
  let snap = En.snapshot parent in
  let f1 = En.fork ?kinetic:(PF.engine_kinetic PF.Wdeq) snap in
  let f2 = En.fork ?kinetic:(PF.engine_kinetic PF.Wdeq) snap in
  Alcotest.(check string) "fork dump = parent dump" (En.dump parent) (En.dump f1);
  let before = En.dump parent in
  ignore (ok (En.apply f1 En.Drain));
  Alcotest.(check string) "draining the fork leaves the parent alone" before (En.dump parent);
  Alcotest.(check string) "and leaves the sibling fork alone" before (En.dump f2);
  ignore (ok (En.apply parent En.Drain));
  Alcotest.(check string) "identical futures" (En.dump f1) (En.dump parent);
  Alcotest.(check (float 0.0)) "identical objectives" (En.weighted_completion f1)
    (En.weighted_completion parent)

(* Forking under a policy override switches the share rule without
   touching the carried state: same alive set, diverging schedule. *)
let test_fork_policy_switch () =
  let parent = engine () in
  let snap = En.snapshot parent in
  let deq = En.fork ~policy:(PF.engine_policy PF.Deq) ?kinetic:(PF.engine_kinetic PF.Deq) snap in
  Alcotest.(check int) "alive set carried over" (En.alive_count parent) (En.alive_count deq);
  ignore (ok (En.apply parent En.Drain));
  ignore (ok (En.apply deq En.Drain));
  (* weights differ across tasks, so WDEQ and DEQ schedules diverge *)
  Alcotest.(check bool) "objectives diverge under the switched rule" true
    (En.weighted_completion parent <> En.weighted_completion deq)

(* ---------- branch runner on a hand-checkable stream ---------- *)

let resolve name =
  if name = "wdeq" then Some (PF.engine_policy PF.Wdeq)
  else if name = "deq" then Some (PF.engine_policy PF.Deq)
  else None

let kinetic_for name =
  if name = "wdeq" then PF.engine_kinetic PF.Wdeq
  else if name = "deq" then PF.engine_kinetic PF.Deq
  else None

let submit id volume weight =
  En.Submit { id; volume; weight; cap = 1.0; speedup = None; deps = [] }

(* Two unit-weight tasks on one processor, forked before a third
   arrives. The straight-line branch reproduces the baseline exactly;
   scaling tenant 1's volumes up makes the branch strictly worse. *)
let test_branch_report () =
  let events =
    [ submit 0 1.0 1.0; submit 1 1.0 1.0; En.Advance 0.5; submit 3 1.0 1.0; En.Drain ]
  in
  let branches =
    [
      { B.label = "idle"; mutations = [] };
      { B.label = "double"; mutations = [ B.Scale_tenant { tenant = 1; num = 2; den = 1 } ] };
    ]
  in
  let report =
    match
      B.run ~resolve ~kinetic_for ~tenants:2 ~capacity:1.0 ~policy:"wdeq" ~events ~fork_at:3
        ~branches ()
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let idle, double =
    match report.B.branches with
    | [ a; b ] -> (a, b)
    | _ -> Alcotest.fail "two branches expected"
  in
  Alcotest.(check (float 0.0)) "straight-line branch: zero delta" 0.0 idle.B.d_wc;
  Alcotest.(check bool) "straight-line branch: no divergence" true (idle.B.first_divergence = None);
  Alcotest.(check int) "straight-line branch: nothing dropped" 0 idle.B.dropped;
  Alcotest.(check bool) "scaling tenant 1 up is strictly worse" true (double.B.d_wc > 0.0);
  Alcotest.(check bool) "divergence time reported" true (double.B.first_divergence <> None);
  (* the per-tenant split must account for the whole delta *)
  Alcotest.(check (float 1e-9)) "tenant deltas sum to the total" double.B.d_wc
    (Array.fold_left ( +. ) 0.0 double.B.tenant_d_wc)

(* ---------- branch spec grammar ---------- *)

let test_spec_grammar () =
  (match B.parse_spec "faster:policy=deq,scale=1:3/2,advance=1/4" with
  | Ok
      {
        B.label = "faster";
        mutations =
          [
            B.Set_policy "deq";
            B.Scale_tenant { B.tenant = 1; num = 3; den = 2 };
            B.Inject (En.Advance dt);
          ];
      } ->
    Alcotest.(check (float 0.0)) "advance" 0.25 dt
  | Ok _ -> Alcotest.fail "wrong parse for policy/scale/advance spec"
  | Error e -> Alcotest.fail e);
  (match B.parse_spec "inject:submit=9:1/2:2:1,cancel=4" with
  | Ok
      {
        B.mutations =
          [
            B.Inject (En.Submit { id; volume; weight; cap; speedup = None; deps = [] });
            B.Inject (En.Cancel 4);
          ];
        _;
      } ->
    Alcotest.(check int) "id" 9 id;
    Alcotest.(check (float 0.0)) "volume" 0.5 volume;
    Alcotest.(check (float 0.0)) "weight" 2.0 weight;
    Alcotest.(check (float 0.0)) "cap" 1.0 cap
  | Ok _ -> Alcotest.fail "wrong parse for submit/cancel spec"
  | Error e -> Alcotest.fail e);
  (match B.parse_spec "bare" with
  | Ok { B.label = "bare"; mutations = [] } -> ()
  | _ -> Alcotest.fail "bare label must parse as a straight-line branch");
  let rejected s = match B.parse_spec s with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "empty label rejected" true (rejected ":policy=deq");
  Alcotest.(check bool) "unknown clause rejected" true (rejected "x:warp=9");
  Alcotest.(check bool) "zero scale factor rejected" true (rejected "x:scale=0:0");
  Alcotest.(check bool) "negative advance rejected" true (rejected "x:advance=-1");
  Alcotest.(check bool) "malformed submit rejected" true (rejected "x:submit=1:2")

(* ---------- load generator determinism ---------- *)

let stream_fingerprint events =
  String.concat "\n" (List.mapi (fun i e -> WF.J.to_line ~seq:i (WF.J.Input e)) events)

let test_loadgen_determinism () =
  List.iter
    (fun pattern ->
      let gen () = L.generate ~pattern ~seed:42 ~tenants:4 ~events:96 () in
      Alcotest.(check string)
        (L.pattern_name pattern ^ ": same seed, same bytes")
        (stream_fingerprint (gen ()))
        (stream_fingerprint (gen ()));
      let other = L.generate ~pattern ~seed:43 ~tenants:4 ~events:96 () in
      Alcotest.(check bool)
        (L.pattern_name pattern ^ ": different seed differs")
        true
        (stream_fingerprint (gen ()) <> stream_fingerprint other))
    [ L.Burst; L.Diurnal; L.Adversarial ]

(* Every pattern's stream (with and without deps) applies cleanly to a
   fresh engine and drains it — the generator's contract with
   `mwct whatif`. *)
let test_loadgen_applies () =
  List.iter
    (fun pattern ->
      List.iter
        (fun deps ->
          let eng =
            En.create ~capacity:4.0
              ?kinetic:(PF.engine_kinetic PF.Wdeq)
              ~policy:(PF.engine_policy PF.Wdeq) ()
          in
          List.iteri
            (fun i ev ->
              match En.apply eng ev with
              | Ok _ -> ()
              | Error e ->
                Alcotest.failf "%s (deps %b) event %d: %s" (L.pattern_name pattern) deps i
                  (En.error_to_string e))
            (L.generate ~deps ~pattern ~seed:7 ~tenants:3 ~events:120 ());
          Alcotest.(check int) (L.pattern_name pattern ^ ": drained") 0 (En.alive_count eng))
        [ false; true ])
    [ L.Burst; L.Diurnal; L.Adversarial ]

(* The float and exact generators draw the same rational stream: every
   payload is dyadic, so converting the exact stream to floats must
   reproduce the float stream event by event. *)
let test_loadgen_cross_field () =
  let module LX = Mwct_runtime.Loadgen.Exact in
  let module Q = Mwct_rational.Rational in
  let fl = L.generate ~deps:true ~pattern:L.Diurnal ~seed:5 ~tenants:4 ~events:64 () in
  let ql = LX.generate ~deps:true ~pattern:LX.Diurnal ~seed:5 ~tenants:4 ~events:64 () in
  Alcotest.(check int) "same length" (List.length fl) (List.length ql);
  List.iter2
    (fun fe qe ->
      match (fe, qe) with
      | ( En.Submit { id = fi; volume = fv; weight = fw; cap = fc; deps = fd; _ },
          LX.En.Submit { id = qi; volume = qv; weight = qw; cap = qc; deps = qd; _ } ) ->
        Alcotest.(check int) "id" fi qi;
        Alcotest.(check (float 0.0)) "volume" fv (Q.to_float qv);
        Alcotest.(check (float 0.0)) "weight" fw (Q.to_float qw);
        Alcotest.(check (float 0.0)) "cap" fc (Q.to_float qc);
        Alcotest.(check (list int)) "deps" fd qd
      | En.Cancel a, LX.En.Cancel b -> Alcotest.(check int) "cancel" a b
      | En.Advance a, LX.En.Advance b -> Alcotest.(check (float 0.0)) "dt" a (Q.to_float b)
      | En.Drain, LX.En.Drain -> ()
      | _ -> Alcotest.fail "event shapes differ across fields")
    fl ql

let () =
  Alcotest.run "whatif"
    [
      ( "oracles",
        [
          Alcotest.test_case "fork identity (float)" `Quick test_fork_identity_float;
          Alcotest.test_case "fork identity (exact)" `Quick test_fork_identity_exact;
          Alcotest.test_case "branch objective (float)" `Quick test_branch_objective_float;
          Alcotest.test_case "branch objective (exact)" `Quick test_branch_objective_exact;
        ] );
      ( "fork",
        [
          Alcotest.test_case "fork isolation" `Quick test_fork_isolation;
          Alcotest.test_case "fork policy switch" `Quick test_fork_policy_switch;
        ] );
      ( "branch",
        [
          Alcotest.test_case "branch report" `Quick test_branch_report;
          Alcotest.test_case "spec grammar" `Quick test_spec_grammar;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "seeded determinism" `Quick test_loadgen_determinism;
          Alcotest.test_case "streams apply cleanly" `Quick test_loadgen_applies;
          Alcotest.test_case "cross-field agreement" `Quick test_loadgen_cross_field;
        ] );
    ]
