(* Tests for Theorem 3 (wrap integerization and averaging) and for the
   Lemma 10 processor assignment with the Theorem 10 preemption bound. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q
module Rng = Mwct_util.Rng

let f = Alcotest.(check (float 1e-6))

(* Build a WF normal form for a random-ish spec, in floats. *)
let wf_schedule spec seed =
  let inst = Support.finst spec in
  let n = Array.length inst.EF.Types.tasks in
  let sigma = EF.Orderings.random (Rng.create seed) n in
  let g = EF.Greedy.run inst sigma in
  EF.Water_filling.normalize g

let test_wrap_hand () =
  (* P=2; one task with fractional allocation 1.5 over [0,2]:
     V=3, delta=2, C=2. Wrap: proc 0 gets [0,2], proc 1 gets [0,1]
     (area order), demand is 2 on [0,1) and 1 on [1,2). *)
  let inst = Support.finst (Support.uspec ~procs:2 [ ((3, 1), 2) ]) in
  match EF.Water_filling.build inst [| 2. |] with
  | Error _ -> Alcotest.fail "infeasible?"
  | Ok s ->
    f "fractional alloc 1.5" 1.5 (EF.Schedule.alloc s 0 0);
    let is, g = EF.Integerize.of_columns s in
    (* Demand: floor/ceil of 1.5. *)
    Alcotest.(check (option int)) "floor/ceil" None (EF.Integerize.check_floor_ceil s is);
    Alcotest.(check bool) "no overlap" true (EF.Assignment.no_overlap g);
    (* Total booked time = volume. *)
    let v = EF.Assignment.booked_volume g in
    f "booked volume" 3. v.(0)

let test_round_trip_exact () =
  (* Exact: integerize then average back = original allocations. *)
  let inst = Support.qinst (Support.uspec ~procs:2 [ ((1, 1), 1); ((3, 1), 2) ]) in
  match EQ.Water_filling.build inst [| Q.of_int 1; Q.of_int 2 |] with
  | Error _ -> Alcotest.fail "infeasible?"
  | Ok s ->
    let is, _ = EQ.Integerize.of_columns s in
    let s' = EQ.Integerize.to_columns is in
    Alcotest.(check bool) "round trip equal finish" true
      (Array.for_all2 Q.equal s.EQ.Types.finish s'.EQ.Types.finish);
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j a ->
            Alcotest.(check string)
              (Printf.sprintf "alloc %d %d" i j)
              (Q.to_string a)
              (Q.to_string (EQ.Schedule.alloc s' i j)))
          row)
      (EQ.Schedule.dense_alloc s)

let test_assignment_hand () =
  let inst = Support.finst (Support.uspec ~procs:2 [ ((3, 1), 2) ]) in
  match EF.Water_filling.build inst [| 2. |] with
  | Error _ -> Alcotest.fail "infeasible?"
  | Ok s ->
    let is, _ = EF.Integerize.of_columns s in
    let g = EF.Assignment.assign is in
    Alcotest.(check bool) "no overlap" true (EF.Assignment.no_overlap g);
    let c = EF.Assignment.completion_times g in
    f "completion preserved" 2. c.(0);
    (* One task on <= 2 procs: at most one preemption possible, and the
       3n bound certainly holds. *)
    Alcotest.(check bool) "preemptions <= 3n" true (EF.Assignment.preemptions g <= 3)

(* ---------- properties ---------- *)

let gen = QCheck2.Gen.pair (Support.gen_spec ~max_procs:6 ~max_n:6 `Uniform) (QCheck2.Gen.int_bound 1_000_000)

let prop_floor_ceil =
  QCheck2.Test.make ~name:"Theorem 3: wrap uses floor/ceil processors" ~count:200
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let s = wf_schedule spec seed in
      let is, _ = EF.Integerize.of_columns s in
      EF.Integerize.check_floor_ceil s is = None)

let prop_wrap_gantt_sane =
  QCheck2.Test.make ~name:"wrap gantt: no overlap, volumes preserved" ~count:200
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let s = wf_schedule spec seed in
      let _, g = EF.Integerize.of_columns s in
      EF.Assignment.no_overlap g
      && Array.for_all2
           (fun v (t : EF.Types.task) -> Float.abs (v -. t.EF.Types.volume) < 1e-6)
           (EF.Assignment.booked_volume g) s.EF.Types.instance.EF.Types.tasks)

let prop_round_trip =
  QCheck2.Test.make ~name:"Theorem 3 round trip preserves allocations" ~count:150
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let s = wf_schedule spec seed in
      let is, _ = EF.Integerize.of_columns s in
      let s' = EF.Integerize.to_columns is in
      (* completion times may reorder equal entries; compare per-task
         completion and the allocation integrals. *)
      let c = EF.Schedule.completion_times s and c' = EF.Schedule.completion_times s' in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) c c'
      && Float.abs
           (EF.Schedule.weighted_completion_time s -. EF.Schedule.weighted_completion_time s')
         < 1e-6)

let prop_assignment_valid =
  QCheck2.Test.make ~name:"assignment: demands realized without overlap" ~count:200
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let s = wf_schedule spec seed in
      let is, _ = EF.Integerize.of_columns s in
      let g = EF.Assignment.assign is in
      EF.Assignment.no_overlap g
      && Array.for_all2
           (fun v (t : EF.Types.task) -> Float.abs (v -. t.EF.Types.volume) < 1e-6)
           (EF.Assignment.booked_volume g) s.EF.Types.instance.EF.Types.tasks
      && Array.for_all2
           (fun a b -> Float.abs (a -. b) < 1e-6)
           (EF.Assignment.completion_times g)
           (EF.Schedule.completion_times s))

let prop_theorem10_preemptions =
  QCheck2.Test.make ~name:"Theorem 10: <= 3n preemptions on WF schedules" ~count:200
    ~print:(fun (s, _) -> Support.print_spec s)
    gen
    (fun (spec, seed) ->
      let s = wf_schedule spec seed in
      let n = Array.length s.EF.Types.instance.EF.Types.tasks in
      let is, _ = EF.Integerize.of_columns s in
      let g = EF.Assignment.assign is in
      EF.Assignment.preemptions g <= 3 * n)

let prop_exact_wrap =
  QCheck2.Test.make ~name:"exact wrap: strict round trip equality" ~count:40
    ~print:(fun (s, _) -> Support.print_spec s)
    (QCheck2.Gen.pair (Support.gen_spec ~max_procs:4 ~max_n:4 ~den:16 `Uniform) (QCheck2.Gen.int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.qinst spec in
      let n = Array.length inst.EQ.Types.tasks in
      let sigma = EQ.Orderings.random (Rng.create seed) n in
      let s = EQ.Water_filling.normalize (EQ.Greedy.run inst sigma) in
      let is, _ = EQ.Integerize.of_columns s in
      let s' = EQ.Integerize.to_columns is in
      let c = EQ.Schedule.completion_times s and c' = EQ.Schedule.completion_times s' in
      Array.for_all2 Q.equal c c'
      && Array.for_all2
           (fun r r' -> Array.for_all2 Q.equal r r')
           (EQ.Schedule.dense_alloc s) (EQ.Schedule.dense_alloc s'))

(* Exact-field sharp counting bounds over the adversarial generator
   families (engineered ties, full malleability, awkward denominators).
   These are the float-fragile theorems: exact arithmetic keeps tied
   completion times tied, so the counts are checked with no tolerance.
   Both bounds are offline results — the schedules come from greedy
   over a random priority order, not from WDEQ, whose event-driven
   completion vectors can exceed them (corpus/wdeq-thm9-boundary.spec). *)
let gen_adversarial_exact =
  QCheck2.Gen.pair
    (QCheck2.Gen.oneof
       [
         Support.gen_spec ~max_procs:5 ~max_n:5 ~den:16 `Near_tie;
         Support.gen_spec ~max_procs:5 ~max_n:5 ~den:16 `Delta_full;
         Support.gen_spec ~max_procs:5 ~max_n:5 ~den:16 `Tiny_den;
       ])
    (QCheck2.Gen.int_bound 1_000_000)

let exact_wf spec seed =
  let inst = Support.qinst spec in
  let n = Array.length inst.EQ.Types.tasks in
  let sigma = EQ.Orderings.random (Rng.create seed) n in
  (inst, EQ.Water_filling.normalize (EQ.Greedy.run inst sigma))

let prop_thm9_exact_adversarial =
  QCheck2.Test.make ~name:"Theorem 9: <= n allocation changes (exact, adversarial)" ~count:60
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_adversarial_exact
    (fun (spec, seed) ->
      let inst, s = exact_wf spec seed in
      EQ.Preemption.total_changes s <= Array.length inst.EQ.Types.tasks)

let prop_thm10_exact_adversarial =
  QCheck2.Test.make ~name:"Theorem 10: <= 3n preemptions (exact, adversarial)" ~count:60
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_adversarial_exact
    (fun (spec, seed) ->
      let inst, s = exact_wf spec seed in
      let is, wrap = EQ.Integerize.of_columns s in
      let g = EQ.Assignment.assign is in
      EQ.Assignment.no_overlap wrap
      && EQ.Assignment.no_overlap g
      && EQ.Assignment.preemptions g <= 3 * Array.length inst.EQ.Types.tasks)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "integerize"
    [
      ( "unit",
        [
          Alcotest.test_case "wrap hand example" `Quick test_wrap_hand;
          Alcotest.test_case "round trip exact" `Quick test_round_trip_exact;
          Alcotest.test_case "assignment hand" `Quick test_assignment_hand;
        ] );
      ( "properties",
        q
          [
            prop_floor_ceil;
            prop_wrap_gantt_sane;
            prop_round_trip;
            prop_assignment_valid;
            prop_theorem10_preemptions;
            prop_exact_wrap;
            prop_thm9_exact_adversarial;
            prop_thm10_exact_adversarial;
          ] );
    ]
