(* Tests for the generalized rate model: concave piecewise-linear
   speedup curves and per-task machine capacities. Covers the curve
   algebra (rate_at / inverse_rate / curve_rate), capacity folding in
   Instance.of_spec, the linear fast-path seam (an identity curve is
   semantically the linear law), schedule validity of the generic WDEQ
   path on curved instances, the runtime engine against batch WDEQ,
   journal round-trips of curved submissions, and the cross-layer pin
   between the engine's local curve evaluator and the core reference. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q
module Spec = Mwct_core.Spec

let rat = Spec.rat

(* A 3-piece strictly concave curve saturating at delta = 4:
   slopes 3/4, 1/2, 1/8. *)
let curve3 = [ (rat 1 1, rat 3 4); (rat 2 1, rat 5 4); (rat 4 1, rat 3 2) ]

let curved_spec ?capacity ?(procs = 6) () =
  Spec.make ~procs
    [
      Spec.task ~volume:(rat 7 3) ~weight:(rat 2 1) ~speedup:curve3 ?capacity ~delta:4 ();
      Spec.task ~volume:(rat 1 2) ~delta:3 ();
      Spec.task ~volume:(rat 3 1) ~weight:(rat 1 3) ~speedup:[ (rat 2 1, rat 1 1) ] ~delta:2 ();
    ]

(* ---------- curve algebra ---------- *)

let test_rate_at () =
  let inst = Support.finst (curved_spec ()) in
  let r = EF.Instance.rate_at inst 0 in
  Alcotest.(check (float 0.)) "s(0) = 0" 0.0 (r 0.0);
  (* breakpoints hit exactly *)
  Alcotest.(check (float 1e-12)) "s(1)" 0.75 (r 1.0);
  Alcotest.(check (float 1e-12)) "s(2)" 1.25 (r 2.0);
  Alcotest.(check (float 1e-12)) "s(4)" 1.5 (r 4.0);
  (* interpolation: origin-implicit first piece, then slope 1/2, 1/8 *)
  Alcotest.(check (float 1e-12)) "s(1/2)" 0.375 (r 0.5);
  Alcotest.(check (float 1e-12)) "s(3)" 1.375 (r 3.0);
  (* plateau beyond the saturation point *)
  Alcotest.(check (float 1e-12)) "s(9) plateau" 1.5 (r 9.0);
  (* the linear law is the identity, unclamped (callers clamp shares) *)
  Alcotest.(check (float 0.)) "linear s(a) = a" 2.5 (EF.Instance.rate_at inst 1 2.5)

let test_inverse_rate () =
  let inst = Support.qinst (curved_spec ()) in
  let qq n d = Q.of_q n d in
  let check_rt name i rv =
    let a = EQ.Instance.inverse_rate inst i rv in
    Alcotest.(check bool) name true (Q.equal (EQ.Instance.rate_at inst i a) rv)
  in
  check_rt "inverse on first piece" 0 (qq 3 8);
  check_rt "inverse at breakpoint" 0 (qq 5 4);
  check_rt "inverse on last piece" 0 (qq 11 8);
  (* rates above the plateau clamp to the saturation allocation *)
  Alcotest.(check bool) "unachievable rate clamps" true
    (Q.equal (EQ.Instance.inverse_rate inst 0 (qq 7 1)) (qq 4 1));
  (* linear law: inverse is the identity *)
  Alcotest.(check bool) "linear inverse" true
    (Q.equal (EQ.Instance.inverse_rate inst 1 (qq 5 2)) (qq 5 2))

let test_max_rate_and_height () =
  let inst = Support.finst (curved_spec ()) in
  Alcotest.(check (float 1e-12)) "max_rate curved" 1.5 (EF.Instance.max_rate inst 0);
  Alcotest.(check (float 1e-12)) "height = V / max_rate" ((7. /. 3.) /. 1.5)
    (EF.Instance.height inst 0);
  Alcotest.(check (float 1e-12)) "max_rate linear" 3.0 (EF.Instance.max_rate inst 1)

(* ---------- capacity folding ---------- *)

let test_capacity_folding () =
  (* linear task: delta clamps to the capacity *)
  let spec =
    Spec.make ~procs:8 [ Spec.task ~volume:(rat 1 1) ~capacity:2 ~delta:5 () ]
  in
  let inst = Support.finst spec in
  Alcotest.(check (float 0.)) "linear capacity clamps delta" 2.0
    (EF.Instance.effective_delta inst 0);
  Alcotest.(check bool) "folded linear task has no curve" false (EF.Instance.has_curves inst);
  (* curved task, capacity between breakpoints: curve truncated at the
     capacity with the interpolated rate as new saturation point *)
  let inst3 = Support.finst (curved_spec ~capacity:3 ()) in
  Alcotest.(check (float 1e-12)) "truncated effective delta" 3.0
    (EF.Instance.effective_delta inst3 0);
  Alcotest.(check (float 1e-12)) "truncated max rate" 1.375 (EF.Instance.max_rate inst3 0);
  Alcotest.(check (float 1e-12)) "rates below capacity unchanged" 1.25
    (EF.Instance.rate_at inst3 0 2.0);
  (* capacity at a breakpoint: exact prefix *)
  let inst2 = Support.finst (curved_spec ~capacity:2 ()) in
  Alcotest.(check (float 1e-12)) "breakpoint-aligned capacity" 1.25
    (EF.Instance.max_rate inst2 0)

(* ---------- cross-layer pin: engine curve evaluator = core reference ---------- *)

let test_engine_eval_matches_core () =
  let module EnF = Mwct_runtime.Engine.Make (Mwct_field.Field.Float_field) in
  let inst = Support.finst (curved_spec ()) in
  List.iter
    (fun i ->
      match EF.Instance.speedup_arrays inst i with
      | None -> ()
      | Some (bx, by) ->
        let rec at a =
          if a > 6.0 then ()
          else begin
            Alcotest.(check (float 0.))
              (Printf.sprintf "task %d eval_curve(%g)" i a)
              (EF.Instance.curve_rate (bx, by) a)
              (EnF.eval_curve bx by a);
            at (a +. 0.109375)
          end
        in
        at 0.0)
    [ 0; 1; 2 ]

(* ---------- linear seam: identity curve = linear law ---------- *)

let prop_identity_curve_is_linear =
  QCheck2.Test.make ~count:60 ~name:"identity curve wdeq objective = linear (exact)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:5 `Mixed)
    (fun spec ->
      let curved =
        {
          spec with
          Spec.tasks =
            Array.map
              (fun (t : Spec.task) ->
                { t with Spec.speedup = [ (Spec.rat_of_int t.Spec.delta, Spec.rat_of_int t.Spec.delta) ] })
              spec.Spec.tasks;
        }
      in
      let o inst = EQ.Schedule.weighted_completion_time (fst (EQ.Wdeq.wdeq inst)) in
      Q.equal (o (Support.qinst spec)) (o (Support.qinst curved)))

(* ---------- generic WDEQ path on curved instances ---------- *)

let valid_wdeq_on ~exact kind count =
  QCheck2.Test.make ~count
    ~name:
      (Printf.sprintf "wdeq valid on %s (%s)"
         (match kind with `Concave_curves -> "concave-curves" | _ -> "capacity-tight")
         (if exact then "exact" else "float"))
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:6 kind)
    (fun spec ->
      if exact then begin
        let sched, _ = EQ.Wdeq.wdeq (Support.qinst spec) in
        match EQ.Schedule.check ~exact:true sched with
        | Ok () -> true
        | Error v -> QCheck2.Test.fail_report (EQ.Schedule.violation_to_string v)
      end
      else begin
        let sched, _ = EF.Wdeq.wdeq (Support.finst spec) in
        match EF.Schedule.check sched with
        | Ok () -> true
        | Error v -> QCheck2.Test.fail_report (EF.Schedule.violation_to_string v)
      end)

let prop_wdeq_curves_float = valid_wdeq_on ~exact:false `Concave_curves 120
let prop_wdeq_curves_exact = valid_wdeq_on ~exact:true `Concave_curves 50
let prop_wdeq_capacity_float = valid_wdeq_on ~exact:false `Capacity_tight 120
let prop_wdeq_capacity_exact = valid_wdeq_on ~exact:true `Capacity_tight 50

(* Lower bounds stay dominated under curves (first slope <= 1 means
   rate <= allocation, so A and H remain lower bounds). *)
let prop_bounds_dominated_curved =
  QCheck2.Test.make ~count:60 ~name:"A,H <= wdeq objective on curved instances (exact)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:5 `Concave_curves)
    (fun spec ->
      let inst = Support.qinst spec in
      let obj = EQ.Schedule.weighted_completion_time (fst (EQ.Wdeq.wdeq inst)) in
      Q.compare (EQ.Lower_bounds.best inst) obj <= 0)

(* ---------- makespan under curves ---------- *)

let prop_makespan_curved =
  QCheck2.Test.make ~count:60 ~name:"curved makespan schedule achieves T* (exact)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:5 `Concave_curves)
    (fun spec ->
      let inst = Support.qinst spec in
      let t = EQ.Makespan.optimal inst in
      let sched = EQ.Makespan.schedule inst in
      EQ.Schedule.is_valid ~exact:true sched
      && Q.equal (EQ.Schedule.makespan sched) t)

(* ---------- runtime engine on curved instances ---------- *)

module HEn (F : Mwct_field.Field.S) = struct
  module En = Mwct_runtime.Engine.Make (F)
  module J = Mwct_runtime.Journal.Make (F)
  module E = Mwct_core.Engine.Make (F)
  module Sim = Mwct_ncv.Simulator.Make (F)

  let drain_all (inst : E.Types.instance) =
    let eng =
      En.create ~capacity:inst.E.Types.procs ~policy:(Sim.P.engine_policy Sim.P.Wdeq) ()
    in
    Array.iteri
      (fun i (t : E.Types.task) ->
        match
          En.submit eng
            ?speedup:(E.Instance.speedup_arrays inst i)
            ~id:i ~volume:t.E.Types.volume ~weight:t.E.Types.weight
            ~cap:(E.Instance.effective_delta inst i) ()
        with
        | Ok () -> ()
        | Error e -> Alcotest.fail (En.error_to_string e))
      inst.E.Types.tasks;
    (match En.apply eng En.Drain with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (En.error_to_string e));
    eng
end

module HF = HEn (Mwct_field.Field.Float_field)
module HQ = HEn (Mwct_rational.Rational.Rat_field)

let prop_engine_matches_wdeq_curved_float =
  QCheck2.Test.make ~count:80 ~name:"engine drain = batch wdeq on curves (float)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:6 `Concave_curves)
    (fun spec ->
      let inst = Support.finst spec in
      let eng = HF.drain_all inst in
      let batch, _ = EF.Wdeq.wdeq inst in
      let expected = EF.Schedule.weighted_completion_time batch in
      abs_float (expected -. HF.En.weighted_completion eng) <= 1e-9 *. (1. +. abs_float expected))

let prop_engine_matches_wdeq_curved_exact =
  QCheck2.Test.make ~count:40 ~name:"engine drain = batch wdeq on curves (exact)"
    ~print:Support.print_spec
    (Support.gen_spec ~max_n:5 `Capacity_tight)
    (fun spec ->
      let inst = Support.qinst spec in
      let eng = HQ.drain_all inst in
      let batch, _ = EQ.Wdeq.wdeq inst in
      Q.equal (EQ.Schedule.weighted_completion_time batch) (HQ.En.weighted_completion eng))

(* ---------- journal round-trip of curved submissions ---------- *)

let test_journal_roundtrip_curved () =
  let inst = Support.finst (curved_spec ()) in
  let entries =
    HF.J.Init { capacity = inst.HF.E.Types.procs; policy = "wdeq" }
    :: List.concat_map
         (fun i ->
           [
             HF.J.Input
               (HF.En.Submit
                  {
                    id = i;
                    volume = inst.HF.E.Types.tasks.(i).HF.E.Types.volume;
                    weight = inst.HF.E.Types.tasks.(i).HF.E.Types.weight;
                    cap = HF.E.Instance.effective_delta inst i;
                    speedup = HF.E.Instance.speedup_arrays inst i;
                    deps = [];
                  });
           ])
         [ 0; 1; 2 ]
  in
  let lines = List.mapi (fun seq e -> HF.J.to_line ~seq e) entries in
  (* curved submissions carry speedup fields; linear ones must not *)
  let contains l sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length l && (String.sub l i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "curved line has speedup" true (contains (List.nth lines 1) "speedup");
  Alcotest.(check bool) "linear line has no speedup" false (contains (List.nth lines 2) "speedup");
  List.iteri
    (fun seq line ->
      match HF.J.of_line line with
      | Error msg -> Alcotest.failf "of_line %S: %s" line msg
      | Ok (_, e) -> Alcotest.(check string) "codec round-trip" line (HF.J.to_line ~seq e))
    lines

let test_engine_rejects_bad_curve () =
  let module En = HF.En in
  let eng =
    En.create ~capacity:4.0 ~policy:(HF.Sim.P.engine_policy HF.Sim.P.Wdeq) ()
  in
  let bad bx by =
    match En.submit eng ~speedup:(bx, by) ~id:9 ~volume:1.0 ~weight:1.0 ~cap:2.0 () with
    | Error (En.Invalid _) -> ()
    | Error e -> Alcotest.failf "wrong error: %s" (En.error_to_string e)
    | Ok () -> Alcotest.fail "invalid curve accepted"
  in
  bad [| 2.0; 1.0 |] [| 1.0; 2.0 |];
  (* non-monotone allocations *)
  bad [| 1.0; 2.0 |] [| 1.0; 0.5 |];
  (* decreasing rate *)
  bad [| 1.0; 2.0 |] [| 0.5; 3.0 |];
  (* non-concave *)
  bad [| 1.0 |] [| 2.0 |];
  (* superlinear *)
  bad [| 0.0; 1.0 |] [| 0.0; 1.0 |]
(* non-positive breakpoint *)

let () =
  let p = QCheck_alcotest.to_alcotest in
  Alcotest.run "speedup"
    [
      ( "curve algebra",
        [
          Alcotest.test_case "rate_at" `Quick test_rate_at;
          Alcotest.test_case "inverse_rate" `Quick test_inverse_rate;
          Alcotest.test_case "max_rate and height" `Quick test_max_rate_and_height;
          Alcotest.test_case "capacity folding" `Quick test_capacity_folding;
          Alcotest.test_case "engine evaluator = core reference" `Quick
            test_engine_eval_matches_core;
        ] );
      ( "solvers",
        [
          p prop_identity_curve_is_linear;
          p prop_wdeq_curves_float;
          p prop_wdeq_curves_exact;
          p prop_wdeq_capacity_float;
          p prop_wdeq_capacity_exact;
          p prop_bounds_dominated_curved;
          p prop_makespan_curved;
        ] );
      ( "runtime",
        [
          p prop_engine_matches_wdeq_curved_float;
          p prop_engine_matches_wdeq_curved_exact;
          Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip_curved;
          Alcotest.test_case "engine rejects bad curves" `Quick test_engine_rejects_bad_curve;
        ] );
    ]
