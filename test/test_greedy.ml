(* Tests for Algorithm Greedy(σ) (Section V): hand examples, validity on
   random instances, the Theorem 11 dominance (optimal = greedy on wide
   instances with homogeneous weights), and agreement between the
   generic greedy and the Section V-B closed recurrence. *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q
module Rng = Mwct_util.Rng

let f = Alcotest.(check (float 1e-9))

(* P=2; T0: V=2 d=1; T1: V=2 d=2. Insert T0 first: it runs on 1 proc
   over [0,2]. T1 then gets min(2, avail): 1 proc until t=2... it
   finishes V=2 at t=2 as well. *)
let test_greedy_hand () =
  let inst = Support.finst (Support.uspec ~procs:2 [ ((2, 1), 1); ((2, 1), 2) ]) in
  let s = EF.Greedy.run inst [| 0; 1 |] in
  Alcotest.(check bool) "valid" true (EF.Schedule.is_valid s);
  f "C0" 2. (EF.Schedule.completion_time s 0);
  f "C1" 2. (EF.Schedule.completion_time s 1);
  (* Reverse order: T1 first takes both procs, finishes at 1; T0 runs
     [0,?] on the remaining 0, then 1 proc: it gets nothing before 1?
     avail = 0 during [0,1], then 2: T0 takes 1 proc on [1,3]. *)
  let s = EF.Greedy.run inst [| 1; 0 |] in
  Alcotest.(check bool) "valid (reverse)" true (EF.Schedule.is_valid s);
  f "C1 first" 1. (EF.Schedule.completion_time s 1);
  f "C0 second" 3. (EF.Schedule.completion_time s 0)

let test_greedy_delta_cap () =
  (* A single task can never use more than delta processors. *)
  let inst = Support.finst (Support.uspec ~procs:4 [ ((4, 1), 2) ]) in
  let s = EF.Greedy.run inst [| 0 |] in
  f "C = V/delta" 2. (EF.Schedule.completion_time s 0);
  f "alloc = delta" 2. (EF.Schedule.alloc s 0 0)

let test_greedy_rejects_bad_order () =
  let inst = Support.finst (Support.uspec ~procs:2 [ ((1, 1), 1); ((1, 1), 1) ]) in
  Alcotest.check_raises "duplicate entries" (Invalid_argument "Greedy.run: order is not a permutation")
    (fun () -> ignore (EF.Greedy.run inst [| 0; 0 |]));
  Alcotest.check_raises "wrong length" (Invalid_argument "Greedy.run: order length mismatch") (fun () ->
      ignore (EF.Greedy.run inst [| 0 |]))

let test_greedy_exact () =
  let inst = Support.qinst (Support.uspec ~procs:2 [ ((2, 1), 1); ((2, 1), 2) ]) in
  let s = EQ.Greedy.run inst [| 1; 0 |] in
  Alcotest.(check bool) "exact strictly valid" true (EQ.Schedule.is_valid ~exact:true s);
  Alcotest.(check string) "objective 1 + 3 = 4" "4" (Q.to_string (EQ.Schedule.weighted_completion_time s))

(* ---------- properties ---------- *)

let gen_ordered =
  let open QCheck2.Gen in
  let* spec = Support.gen_spec `Uniform in
  let* seed = int_bound 1_000_000 in
  return (spec, seed)

let prop_greedy_valid =
  QCheck2.Test.make ~name:"greedy schedules are valid" ~count:400
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_ordered
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      EF.Schedule.is_valid (EF.Greedy.run inst sigma))

let prop_greedy_integer_allocations =
  QCheck2.Test.make ~name:"greedy allocations are integers (P, deltas integral)" ~count:200
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_ordered
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let s = EF.Greedy.run inst sigma in
      Array.for_all
        (List.for_all (fun (_, a) -> Float.abs (a -. Float.round a) < 1e-6))
        s.EF.Types.columns)

let prop_first_task_asap =
  QCheck2.Test.make ~name:"first inserted task completes at its earliest possible time" ~count:200
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_ordered
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let s = EF.Greedy.run inst sigma in
      let first = sigma.(0) in
      let expected = EF.Instance.height inst first in
      Float.abs (EF.Schedule.completion_time s first -. expected) < 1e-6)

let prop_greedy_exact_matches_float =
  QCheck2.Test.make ~name:"exact greedy matches float greedy" ~count:100
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_ordered
    (fun (spec, seed) ->
      let fi = Support.finst spec and qi = Support.qinst spec in
      let n = Array.length fi.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let sf = EF.Greedy.run fi sigma in
      let sq = EQ.Greedy.run qi sigma in
      Float.abs
        (EF.Schedule.weighted_completion_time sf -. Q.to_float (EQ.Schedule.weighted_completion_time sq))
      < 1e-6)

(* Theorem 11: on instances with homogeneous weights and delta > P/2,
   the optimum is greedy: best greedy = LP optimum (exactly). *)
let prop_theorem11_wide_instances =
  QCheck2.Test.make ~name:"Theorem 11: optimal is greedy on wide instances" ~count:40
    ~print:Support.print_spec
    (Support.gen_spec ~max_procs:5 ~max_n:4 `Wide)
    (fun spec ->
      let qi = Support.qinst spec in
      let opt, _ = EQ.Lp_schedule.optimal qi in
      let best_greedy, _ = EQ.Lp_schedule.best_greedy qi in
      Q.compare opt best_greedy <= 0 && Q.equal opt best_greedy)

(* The Section V-B recurrence agrees with the generic greedy run on the
   equivalent instance (P = 1, fractional deltas in [1/2, 1]). *)
let prop_recurrence_matches_greedy =
  QCheck2.Test.make ~name:"V-B recurrence = generic greedy (exact)" ~count:60
    (QCheck2.Gen.pair (QCheck2.Gen.int_bound 1_000_000) (QCheck2.Gen.int_range 1 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let deltas_spec = Mwct_workload.Generator.homogeneous_deltas rng ~n ~den:64 () in
      let deltas = Array.map (fun (r : Mwct_core.Spec.rat) -> Q.of_q r.num r.den) deltas_spec in
      let order = EQ.Orderings.random rng n in
      let by_recurrence = EQ.Homogeneous.total deltas order in
      let inst = EQ.Homogeneous.to_instance deltas in
      let by_greedy = EQ.Schedule.sum_completion_time (EQ.Greedy.run inst order) in
      Q.equal by_recurrence by_greedy)

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "greedy"
    [
      ( "unit",
        [
          Alcotest.test_case "hand example" `Quick test_greedy_hand;
          Alcotest.test_case "delta cap" `Quick test_greedy_delta_cap;
          Alcotest.test_case "order validation" `Quick test_greedy_rejects_bad_order;
          Alcotest.test_case "exact engine" `Quick test_greedy_exact;
        ] );
      ( "properties",
        q
          [
            prop_greedy_valid;
            prop_greedy_integer_allocations;
            prop_first_task_asap;
            prop_greedy_exact_matches_float;
            prop_theorem11_wide_instances;
            prop_recurrence_matches_greedy;
          ] );
    ]
