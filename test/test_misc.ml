(* Tests for the remaining support modules: Spec_io (parsing/printing),
   Orderings (permutation machinery, priority rules), Preemption
   counting on hand-built schedules, and a smoke test of the experiment
   battery. *)

open Test_support
module EF = Support.EF
module Spec = Mwct_core.Spec
module Spec_io = Mwct_core.Spec_io
module Rng = Mwct_util.Rng

(* ---------- Spec_io ---------- *)

let test_spec_io_roundtrip () =
  let spec = Support.spec ~procs:3 [ ((1, 2), (3, 4), 2); ((5, 1), (1, 1), 3) ] in
  match Spec_io.of_string (Spec_io.to_string spec) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok spec' -> Alcotest.(check string) "round trip" (Spec.to_string spec) (Spec.to_string spec')

let test_spec_io_comments_and_blanks () =
  let text = "# header comment\n\nprocs 2   # trailing\n\ntask 1/2 1 1\ntask 3 2/5 2 # wide\n" in
  match Spec_io.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok spec ->
    Alcotest.(check int) "procs" 2 spec.Spec.procs;
    Alcotest.(check int) "tasks" 2 (Spec.num_tasks spec);
    Alcotest.(check int) "task 1 delta" 2 spec.Spec.tasks.(1).Spec.delta

let expect_parse_error text =
  match Spec_io.of_string text with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected parse error for %S" text

let test_spec_io_errors () =
  expect_parse_error "";
  (* missing procs *)
  expect_parse_error "task 1 1 1\n";
  expect_parse_error "procs 0\n";
  expect_parse_error "procs 2\ntask 1 1 0\n";
  (* delta 0 *)
  expect_parse_error "procs 2\ntask abc 1 1\n";
  expect_parse_error "procs 2\ntask 1/0 1 1\n";
  expect_parse_error "procs 2\nfrobnicate 1\n";
  expect_parse_error "procs 2\ntask 1 1\n" (* arity *)

(* ---------- Orderings ---------- *)

let test_fold_permutations_count () =
  let count n = EF.Orderings.fold_permutations n (fun acc _ -> acc + 1) 0 in
  Alcotest.(check int) "0! = 1" 1 (count 0);
  Alcotest.(check int) "1! = 1" 1 (count 1);
  Alcotest.(check int) "4! = 24" 24 (count 4);
  Alcotest.(check int) "6! = 720" 720 (count 6);
  Alcotest.(check int) "factorial helper" 720 (EF.Orderings.factorial 6)

let test_fold_permutations_distinct () =
  (* All visited permutations are distinct (copy before storing!). *)
  let seen = Hashtbl.create 64 in
  EF.Orderings.fold_permutations 5
    (fun () p ->
      let key = String.concat "," (Array.to_list (Array.map string_of_int p)) in
      if Hashtbl.mem seen key then Alcotest.failf "duplicate permutation %s" key;
      Hashtbl.add seen key ())
    ();
  Alcotest.(check int) "120 distinct" 120 (Hashtbl.length seen)

let test_priority_rules () =
  let spec =
    Support.spec ~procs:4
      [ ((4, 1), (1, 1), 3); ((1, 1), (2, 1), 1); ((2, 1), (4, 1), 4) ]
  in
  let inst = Support.finst spec in
  (* Smith ratios: 4, 1/2, 1/2 -> ties by index: [1; 2; 0]. *)
  Alcotest.(check (array int)) "smith" [| 1; 2; 0 |] (EF.Orderings.smith inst);
  Alcotest.(check (array int)) "spt" [| 1; 2; 0 |] (EF.Orderings.shortest_volume inst);
  Alcotest.(check (array int)) "largest weight" [| 2; 1; 0 |] (EF.Orderings.largest_weight inst);
  Alcotest.(check (array int)) "largest delta" [| 2; 0; 1 |] (EF.Orderings.largest_delta inst);
  Alcotest.(check (array int)) "smallest delta" [| 1; 0; 2 |] (EF.Orderings.smallest_delta inst);
  (* heights: 4/3, 1, 1/2 -> [2; 1; 0] *)
  Alcotest.(check (array int)) "shortest height" [| 2; 1; 0 |] (EF.Orderings.shortest_height inst);
  Alcotest.(check (array int)) "reverse" [| 0; 2; 1 |] (EF.Orderings.reverse [| 1; 2; 0 |])

let test_random_order_is_permutation () =
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let p = EF.Orderings.random rng 10 in
    let sorted = Array.copy p in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "permutation" (Array.init 10 (fun i -> i)) sorted
  done

(* ---------- Preemption counting on hand-built schedules ---------- *)

let hand_schedule alloc finish order =
  let n = Array.length finish in
  let inst =
    EF.Instance.make ~procs:10.
      (List.init n (fun i ->
           (* volumes consistent with the allocation *)
           let v = ref 0. in
           for j = 0 to n - 1 do
             let len = finish.(j) -. (if j = 0 then 0. else finish.(j - 1)) in
             v := !v +. (alloc.(i).(j) *. len)
           done;
           EF.Instance.task ~volume:(Float.max !v 0.0001) ~delta:10. ()))
  in
  EF.Schedule.of_dense ~instance:inst ~order ~finish alloc

let test_changes_constant_allocation () =
  (* Constant allocation across three columns: zero changes. *)
  let s = hand_schedule [| [| 2.; 2.; 2. |]; [| 1.; 1.; 0. |]; [| 0.; 0.; 3. |] |] [| 1.; 2.; 3. |] [| 1; 0; 2 |] in
  Alcotest.(check int) "no changes" 0 (EF.Preemption.total_changes s)

let test_changes_growing_allocation () =
  (* Task 0 grows 1 -> 2 -> 3: two changes. *)
  let s = hand_schedule [| [| 1.; 2.; 3. |]; [| 1.; 0.; 0. |]; [| 0.; 1.; 1. |] |] [| 1.; 2.; 3. |] [| 1; 2; 0 |] in
  Alcotest.(check int) "task 0 changes" 2 (EF.Preemption.task_changes s 0);
  Alcotest.(check int) "task 2 constant" 0 (EF.Preemption.task_changes s 2)

let test_changes_gap_counts_twice () =
  (* Task 0 runs, stops, restarts: a gap costs 2. *)
  let s = hand_schedule [| [| 1.; 0.; 1. |]; [| 1.; 1.; 0. |]; [| 0.; 1.; 1. |] |] [| 1.; 2.; 3. |] [| 1; 2; 0 |] in
  Alcotest.(check int) "gap = 2 changes" 2 (EF.Preemption.task_changes s 0)

let test_availability_changes () =
  (* Heights 2, 3, 3: one change. *)
  let s = hand_schedule [| [| 2.; 2.; 2. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |] [| 1.; 2.; 3. |] [| 0; 1; 2 |] in
  Alcotest.(check int) "one availability change" 1 (EF.Preemption.availability_changes s)

(* ---------- single-task pipeline (smallest non-trivial n) ---------- *)

let test_single_task_everything () =
  let inst = Support.finst (Support.spec ~procs:3 [ ((6, 1), (2, 1), 2) ]) in
  (* Every algorithm must agree on the only possible answer: the task
     runs at its cap, C = 3, objective = 6. *)
  let expect name v = Alcotest.(check (float 1e-9)) name 6. v in
  expect "wdeq" (EF.Schedule.weighted_completion_time (fst (EF.Wdeq.wdeq inst)));
  expect "greedy" (EF.Greedy.objective inst [| 0 |]);
  expect "lp" (fst (EF.Lp_schedule.optimal inst));
  Alcotest.(check (float 1e-9)) "makespan" 3. (EF.Makespan.optimal inst);
  Alcotest.(check (float 1e-9)) "A(I)" 4. (EF.Lower_bounds.squashed_area inst);
  Alcotest.(check (float 1e-9)) "H(I)" 6. (EF.Lower_bounds.height_bound inst);
  (* Normal form and integerization of the trivial schedule. *)
  let s = EF.Makespan.schedule inst in
  Alcotest.(check int) "no changes" 0 (EF.Preemption.total_changes s);
  let is, _ = EF.Integerize.of_columns s in
  Alcotest.(check int) "no preemptions" 0 (EF.Assignment.preemptions (EF.Assignment.assign is))

(* ---------- simplex API surface ---------- *)

let test_simplex_api () =
  let module Sx = Mwct_simplex.Simplex.Make (Mwct_field.Field.Float_field) in
  let p = Sx.create () in
  let x = Sx.add_var ~name:"alpha" p in
  let y = Sx.add_var p in
  Alcotest.(check int) "num_vars" 2 (Sx.num_vars p);
  Alcotest.(check string) "named var" "alpha" (Sx.var_name p x);
  Alcotest.(check string) "default name" "x1" (Sx.var_name p y);
  Sx.add_constraint p [ (x, 1.); (y, 1.) ] Sx.Geq 2.;
  Sx.set_objective p [ (x, 1.); (y, 2.) ];
  let outcome = Sx.solve p in
  Alcotest.(check (float 1e-9)) "value_of x" 2. (Sx.value_of outcome x);
  Alcotest.(check (float 1e-9)) "value_of y" 0. (Sx.value_of outcome y);
  Alcotest.check_raises "value_of on infeasible" (Invalid_argument "Simplex.value_of: not optimal")
    (fun () ->
      let p = Sx.create () in
      let x = Sx.add_var p in
      Sx.add_constraint p [ (x, 1.) ] Sx.Leq (-1.);
      ignore (Sx.value_of (Sx.solve p) x));
  Alcotest.check_raises "unknown var rejected" (Invalid_argument "Simplex.add_constraint: unknown variable")
    (fun () ->
      let p2 = Sx.create () in
      Sx.add_constraint p2 [ (x, 1.) ] Sx.Leq 1.)

(* ---------- CSV rendering ---------- *)

let test_table_csv () =
  let t = Mwct_util.Tablefmt.create [ "a"; "b" ] in
  Mwct_util.Tablefmt.add_row t [ "plain"; "with,comma" ];
  Mwct_util.Tablefmt.add_row t [ "with\"quote"; "x" ];
  let csv = Mwct_util.Tablefmt.to_csv t in
  Alcotest.(check string) "csv escaping" "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n" csv

(* ---------- experiments smoke ---------- *)

let test_experiment_registry () =
  Alcotest.(check bool) "all names resolve" true
    (List.for_all (fun n -> Option.is_some (Mwct_experiments.Experiments.by_name n)) Mwct_experiments.Experiments.names);
  Alcotest.(check bool) "unknown rejected" true
    (Option.is_none (Mwct_experiments.Experiments.by_name "nope"));
  Alcotest.(check int) "seventeen experiments" 17 (List.length Mwct_experiments.Experiments.names)

let test_experiment_tables_render () =
  (* Run the cheapest experiments end to end and render their tables. *)
  List.iter
    (fun name ->
      match Mwct_experiments.Experiments.by_name name with
      | None -> Alcotest.failf "missing experiment %s" name
      | Some f ->
        let table = f Mwct_experiments.Experiments.Quick in
        let out = Mwct_util.Tablefmt.render table in
        Alcotest.(check bool) (name ^ " non-empty") true (String.length out > 80))
    [ "conjecture13"; "preemptions"; "makespan" ]

let () =
  Alcotest.run "misc"
    [
      ( "spec_io",
        [
          Alcotest.test_case "round trip" `Quick test_spec_io_roundtrip;
          Alcotest.test_case "comments" `Quick test_spec_io_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_spec_io_errors;
        ] );
      ( "orderings",
        [
          Alcotest.test_case "permutation count" `Quick test_fold_permutations_count;
          Alcotest.test_case "permutations distinct" `Quick test_fold_permutations_distinct;
          Alcotest.test_case "priority rules" `Quick test_priority_rules;
          Alcotest.test_case "random order" `Quick test_random_order_is_permutation;
        ] );
      ( "preemption",
        [
          Alcotest.test_case "constant" `Quick test_changes_constant_allocation;
          Alcotest.test_case "growing" `Quick test_changes_growing_allocation;
          Alcotest.test_case "gap" `Quick test_changes_gap_counts_twice;
          Alcotest.test_case "availability" `Quick test_availability_changes;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "single task pipeline" `Quick test_single_task_everything;
          Alcotest.test_case "simplex api" `Quick test_simplex_api;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry" `Quick test_experiment_registry;
          Alcotest.test_case "tables render" `Slow test_experiment_tables_render;
        ] );
    ]
