(* Tests for the sharded store (lib/runtime/shard.ml) and its support
   modules: the replay oracles of Mwct_check.Shard_check on random
   tenant streams (both fields, both routings), the single-shard
   byte-identity shim, engine set_capacity/next_eta/Advance_to, the Par
   fork-join shim, the Ingest chunked reader, and the metrics latency
   histogram. *)

module Rng = Mwct_util.Rng

let seeds = [ 1; 7; 42; 1234; 20120515 ]

let run_oracle name check =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let draw lo hi = Rng.int_in rng lo hi in
      match check draw with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "%s (seed %d): %s" name seed msg))
    seeds

(* ---------- replay oracles, both fields ---------- *)

module CF = Mwct_check.Shard_check.Float
module CX = Mwct_check.Shard_check.Exact

let test_single_identity_float () =
  run_oracle "single-identity float" (fun draw -> CF.check_single_identity draw ~len:60)

let test_single_identity_exact () =
  run_oracle "single-identity exact" (fun draw -> CX.check_single_identity draw ~len:40)

let test_shard_replay_float_mod () =
  run_oracle "shard-replay float mod" (fun draw ->
      CF.check_shard_replay draw ~nshards:3 ~route:CF.St.Mod ~len:60)

let test_shard_replay_float_hash () =
  run_oracle "shard-replay float hash" (fun draw ->
      CF.check_shard_replay draw ~nshards:4 ~route:CF.St.Hash ~len:60)

let test_shard_replay_exact () =
  run_oracle "shard-replay exact" (fun draw ->
      CX.check_shard_replay draw ~nshards:3 ~route:CX.St.Mod ~len:40)

let test_merged_determinism_float () =
  run_oracle "merged-determinism float" (fun draw ->
      CF.check_merged_determinism draw ~nshards:3 ~route:CF.St.Hash ~len:60)

let test_merged_determinism_exact () =
  run_oracle "merged-determinism exact" (fun draw ->
      CX.check_merged_determinism draw ~nshards:2 ~route:CX.St.Mod ~len:30)

let test_flat_agreement_float () =
  run_oracle "flat-agreement float" (fun draw ->
      CF.check_flat_agreement draw ~nshards:4 ~route:CF.St.Mod ~len:60)

let test_flat_agreement_exact () =
  run_oracle "flat-agreement exact" (fun draw ->
      CX.check_flat_agreement draw ~nshards:3 ~route:CX.St.Hash ~len:30)

(* Same oracles over dependency streams: dormant routing (a dependent
   lands on its first parent's shard), activation on completion
   notifications, and cascade cancels must all keep the journals
   byte-replayable. *)
let test_dag_single_identity_float () =
  run_oracle "dag single-identity float" (fun draw ->
      CF.check_single_identity ~deps:true draw ~len:60)

let test_dag_shard_replay_float () =
  run_oracle "dag shard-replay float" (fun draw ->
      CF.check_shard_replay ~deps:true draw ~nshards:3 ~route:CF.St.Mod ~len:60)

let test_dag_shard_replay_exact () =
  run_oracle "dag shard-replay exact" (fun draw ->
      CX.check_shard_replay ~deps:true draw ~nshards:3 ~route:CX.St.Hash ~len:40)

let test_dag_merged_determinism_float () =
  run_oracle "dag merged-determinism float" (fun draw ->
      CF.check_merged_determinism ~deps:true draw ~nshards:4 ~route:CF.St.Hash ~len:60)

let test_dag_flat_agreement_float () =
  run_oracle "dag flat-agreement float" (fun draw ->
      CF.check_flat_agreement ~deps:true draw ~nshards:4 ~route:CF.St.Mod ~len:60)

(* ---------- engine: set_capacity / next_eta / Advance_to ---------- *)

module En = Mwct_runtime.Engine.Float
module P = Mwct_ncv.Policy.Make (Mwct_field.Field.Float_field)

let wdeq = P.engine_policy P.Wdeq
let ok = function Ok x -> x | Error e -> Alcotest.fail (En.error_to_string e)

let submit eng ~id ~volume ~weight ~cap =
  ignore
    (ok (En.apply eng (En.Submit { id; volume; weight; cap; speedup = None; deps = [] })))

let test_set_capacity () =
  let eng = En.create ~capacity:4. ~policy:wdeq () in
  Alcotest.(check bool) "same capacity is a no-op" false (En.set_capacity eng 4.);
  Alcotest.(check bool) "change reported" true (En.set_capacity eng 2.5);
  Alcotest.(check (float 0.)) "capacity updated" 2.5 (En.capacity eng);
  Alcotest.(check bool) "zero is legal" true (En.set_capacity eng 0.);
  (match En.set_capacity eng (-1.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative capacity accepted");
  (* a starved engine reports no next completion, and drain deadlocks *)
  submit eng ~id:0 ~volume:2. ~weight:1. ~cap:1.;
  Alcotest.(check bool) "starved: no eta" true (En.next_eta eng = None);
  (match En.apply eng En.Drain with
  | Error (En.Invalid _) -> ()
  | _ -> Alcotest.fail "drain under zero capacity should deadlock");
  ignore (En.set_capacity eng 4.);
  Alcotest.(check bool) "re-budgeted: eta back" true (En.next_eta eng <> None)

let test_advance_to () =
  let mk () =
    let eng = En.create ~capacity:4. ~policy:wdeq () in
    submit eng ~id:0 ~volume:2. ~weight:1. ~cap:1.;
    submit eng ~id:1 ~volume:8. ~weight:2. ~cap:4.;
    eng
  in
  let a = mk () and b = mk () in
  let notes_a = ok (En.apply a (En.Advance 1.5)) in
  let notes_b = ok (En.apply b (En.Advance_to 1.5)) in
  Alcotest.(check bool) "same completions" true (notes_a = notes_b);
  Alcotest.(check string) "same state" (En.dump a) (En.dump b);
  (match En.apply a (En.Advance_to 1.0) with
  | Error (En.Invalid _) -> ()
  | _ -> Alcotest.fail "advance_to into the past accepted");
  (* landing exactly on the target, not accumulating *)
  ignore (ok (En.apply a (En.Advance_to 1.5)));
  Alcotest.(check (float 0.)) "idempotent target" 1.5 (En.now a)

(* ---------- Par ---------- *)

module Par = Mwct_runtime.Par

let test_par_run () =
  let pool = Par.create 8 in
  let hits = Array.make 8 0 in
  Par.run pool (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (list int)) "each index once" (List.init 8 (fun _ -> 1)) (Array.to_list hits);
  (* exceptions surface after the barrier and the pool survives *)
  (match Par.run pool (fun i -> if i = 3 then failwith "boom") with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "exception swallowed");
  Par.run pool (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check int) "pool usable after exception" 2 hits.(0);
  Par.shutdown pool;
  Par.shutdown pool;
  (* idempotent *)
  Par.run pool (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check int) "sequential fallback after shutdown" 3 hits.(7)

(* ---------- Ingest ---------- *)

module Ingest = Mwct_runtime.Ingest

let with_temp_file content f =
  let path = Filename.temp_file "mwct_ingest" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> output_string oc content);
      In_channel.with_open_bin path (fun ic -> f (Ingest.create ic)))

let read_all r =
  let rec go acc = match Ingest.next_line r with None -> List.rev acc | Some l -> go (l :: acc) in
  go []

let test_ingest_lines () =
  with_temp_file "a\nbb\n\nccc\n" (fun r ->
      Alcotest.(check (list string)) "terminated lines" [ "a"; "bb"; ""; "ccc" ] (read_all r));
  with_temp_file "tail without newline" (fun r ->
      Alcotest.(check (list string)) "unterminated tail" [ "tail without newline" ] (read_all r));
  with_temp_file "" (fun r -> Alcotest.(check (list string)) "empty stream" [] (read_all r));
  (* lines crossing the 64KiB chunk boundary *)
  let long = String.make 100_000 'x' in
  let content = long ^ "\nshort\n" ^ long in
  with_temp_file content (fun r ->
      Alcotest.(check (list string)) "chunk-crossing lines" [ long; "short"; long ] (read_all r))

(* ---------- metrics latency histogram ---------- *)

module M = Mwct_runtime.Metrics.Make (Mwct_field.Field.Float_field)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_latency_histogram () =
  let m = M.create () in
  Alcotest.(check bool) "no data: no quantile" true (M.latency_quantile m 0.5 = None);
  let json_no_lat = M.to_json ~alive:0 ~now:0. m in
  Alcotest.(check bool) "no data: no lat fields" false (contains json_no_lat "lat_p50_us");
  (* 100 observations at ~1us, 10 at ~1ms, 1 at ~1s *)
  for _ = 1 to 100 do
    M.observe_latency m 1e-6
  done;
  for _ = 1 to 10 do
    M.observe_latency m 1e-3
  done;
  M.observe_latency m 1.0;
  let q p = match M.latency_quantile m p with Some v -> v | None -> Alcotest.fail "no quantile" in
  Alcotest.(check bool) "p50 ~ 1us" true (q 0.5 >= 1. && q 0.5 <= 4.);
  Alcotest.(check bool) "p99 ~ 1ms" true (q 0.99 >= 500. && q 0.99 <= 4000.);
  Alcotest.(check bool) "p999 ~ 1s" true (q 0.999 >= 500_000.);
  Alcotest.(check bool) "quantiles monotone" true (q 0.5 <= q 0.9 && q 0.9 <= q 0.99);
  let json = M.to_json ~alive:0 ~now:0. m in
  Alcotest.(check bool) "lat fields present" true (contains json "lat_p50_us");
  Alcotest.(check bool) "lat count present" true (contains json "\"lat_events\":111");
  (* lat_count keys the snapshot memo: a fresh observation must change
     equality, so the memoized json is invalidated *)
  let before = M.copy m in
  Alcotest.(check bool) "copy equal" true (M.equal before m);
  M.observe_latency m 1e-6;
  Alcotest.(check bool) "observation breaks equality" false (M.equal before m)

(* ---------- store smoke: zero-capacity shard rides along ---------- *)

module St = Mwct_runtime.Shard.Float

let test_starved_shard () =
  (* Two shards, all weight in shard 0: WDEQ may starve shard 1 only if
     its weight is zero, which cannot happen with alive tasks — but a
     shard with no tasks must ride advance ticks and keep its clock. *)
  let st =
    St.create ~nshards:2 ~route:St.Mod ~capacity:4. ~allocator:wdeq ~policy:wdeq
      ~kinetic:(fun () -> P.engine_kinetic P.Wdeq)
      ~policy_label:"wdeq" ()
  in
  ignore
    (match St.apply st (St.En.Submit { id = 0; volume = 4.; weight = 1.; cap = 2.; speedup = None; deps = [] }) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (St.En.error_to_string e));
  (match St.apply st (St.En.Advance 1.0) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (St.En.error_to_string e));
  let engines = St.engines st in
  (* lazy clock sync: an empty shard skips the tick entirely... *)
  Alcotest.(check (float 0.)) "empty shard skipped the tick" 0.0 (St.En.now engines.(1));
  (* ...and is caught up right before its next submit, so the task
     still starts at store time now=1 *)
  ignore
    (match St.apply st (St.En.Submit { id = 1; volume = 2.; weight = 1.; cap = 1.; speedup = None; deps = [] }) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (St.En.error_to_string e));
  Alcotest.(check (float 0.)) "lagging shard caught up on submit" 1.0 (St.En.now engines.(1));
  (match St.apply st St.En.Drain with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (St.En.error_to_string e));
  (match St.find_closed st 1 with
  | Some c ->
    Alcotest.(check (float 0.)) "submitted_at respects store clock" 1.0 c.St.En.submitted_at
  | None -> Alcotest.fail "task 1 not closed");
  Alcotest.(check int) "all completed" 2 (St.completed_count st);
  St.shutdown st

let () =
  Alcotest.run "shard"
    [
      ( "oracles",
        [
          Alcotest.test_case "single-shard identity (float)" `Quick test_single_identity_float;
          Alcotest.test_case "single-shard identity (exact)" `Quick test_single_identity_exact;
          Alcotest.test_case "per-shard replay (float, mod)" `Quick test_shard_replay_float_mod;
          Alcotest.test_case "per-shard replay (float, hash)" `Quick test_shard_replay_float_hash;
          Alcotest.test_case "per-shard replay (exact)" `Quick test_shard_replay_exact;
          Alcotest.test_case "merged determinism (float)" `Quick test_merged_determinism_float;
          Alcotest.test_case "merged determinism (exact)" `Quick test_merged_determinism_exact;
          Alcotest.test_case "flat completion-set agreement (float)" `Quick test_flat_agreement_float;
          Alcotest.test_case "flat completion-set agreement (exact)" `Quick test_flat_agreement_exact;
        ] );
      ( "dag-oracles",
        [
          Alcotest.test_case "single-shard identity (float)" `Quick test_dag_single_identity_float;
          Alcotest.test_case "per-shard replay (float)" `Quick test_dag_shard_replay_float;
          Alcotest.test_case "per-shard replay (exact)" `Quick test_dag_shard_replay_exact;
          Alcotest.test_case "merged determinism (float)" `Quick test_dag_merged_determinism_float;
          Alcotest.test_case "flat completion-set agreement (float)" `Quick test_dag_flat_agreement_float;
        ] );
      ( "engine",
        [
          Alcotest.test_case "set_capacity" `Quick test_set_capacity;
          Alcotest.test_case "advance_to" `Quick test_advance_to;
        ] );
      ( "par", [ Alcotest.test_case "fork-join pool" `Quick test_par_run ] );
      ( "ingest", [ Alcotest.test_case "chunked line reader" `Quick test_ingest_lines ] );
      ( "metrics", [ Alcotest.test_case "latency histogram" `Quick test_latency_histogram ] );
      ( "store", [ Alcotest.test_case "idle shard rides ticks" `Quick test_starved_shard ] );
    ]
