(* Tests for Algorithm WF (Section IV): hand-checkable constructions,
   Theorem 8 (WF succeeds iff the completion times are feasible),
   Lemma 3 (non-increasing column heights), normalization invariance,
   and Theorem 9 (at most n allocation changes). *)

open Test_support
module EF = Support.EF
module EQ = Support.EQ
module Q = Support.Q
module G = Mwct_workload.Generator
module Rng = Mwct_util.Rng

let f = Alcotest.(check (float 1e-9))

(* P=2, T0: V=1 d=1, T1: V=3 d=2. Times C0=1, C1=2.
   WF pours T0 in column 0 ([0,1]): needs height 1 (alloc 1).
   T1 over columns [0,1] and [1,2]: level h solves
   1*clamp(h-1,0,2) + 1*clamp(h-0,0,2) = 3 -> h = 2: alloc 1 in col 0,
   2 in col 1. Heights: col0 = 2, col1 = 2. *)
let test_wf_hand_example () =
  let inst = Support.finst (Support.uspec ~procs:2 [ ((1, 1), 1); ((3, 1), 2) ]) in
  match EF.Water_filling.build inst [| 1.; 2. |] with
  | Error k -> Alcotest.failf "unexpected infeasibility on task %d" k
  | Ok s ->
    Alcotest.(check bool) "valid" true (EF.Schedule.is_valid s);
    f "T0 in col 0" 1. (EF.Schedule.alloc s 0 0);
    f "T1 in col 0" 1. (EF.Schedule.alloc s 1 0);
    f "T1 in col 1" 2. (EF.Schedule.alloc s 1 1);
    f "objective" 3. (EF.Schedule.weighted_completion_time s)

(* Saturation case: T1 has delta 1, so the water level exceeds the cap
   and T1 is saturated in its last column. *)
let test_wf_saturation () =
  let inst = Support.finst (Support.uspec ~procs:2 [ ((1, 1), 1); ((2, 1), 1) ]) in
  (* T1 can use at most 1 processor: completion 2 needs alloc 1 in both
     columns. *)
  match EF.Water_filling.build inst [| 1.; 2. |] with
  | Error k -> Alcotest.failf "unexpected infeasibility on task %d" k
  | Ok s ->
    f "T1 saturated col 0" 1. (EF.Schedule.alloc s 1 0);
    f "T1 saturated col 1" 1. (EF.Schedule.alloc s 1 1)

let test_wf_infeasible () =
  let inst = Support.finst (Support.uspec ~procs:2 [ ((1, 1), 1); ((5, 1), 2) ]) in
  (* T1 cannot fit 5 units before time 2 even using both processors:
     capacity available = 2*2 - 1 = 3 < 5. *)
  (match EF.Water_filling.build inst [| 1.; 2. |] with
  | Error k -> Alcotest.(check int) "fails on T1" 1 k
  | Ok _ -> Alcotest.fail "expected infeasible");
  Alcotest.(check bool) "feasible predicate agrees" false
    (EF.Water_filling.feasible inst [| 1.; 2. |])

let test_wf_single_task_tight () =
  let inst = Support.finst (Support.uspec ~procs:4 [ ((8, 1), 2) ]) in
  (* Earliest possible completion: V/delta = 4. *)
  Alcotest.(check bool) "tight time feasible" true (EF.Water_filling.feasible inst [| 4. |]);
  Alcotest.(check bool) "too early infeasible" false (EF.Water_filling.feasible inst [| 3.99 |])

let test_wf_equal_times () =
  (* All completion times equal: everything is poured into column 0. *)
  let inst = Support.finst (Support.uspec ~procs:3 [ ((2, 1), 1); ((2, 1), 2); ((2, 1), 3) ]) in
  match EF.Water_filling.build inst [| 2.; 2.; 2. |] with
  | Error k -> Alcotest.failf "unexpected infeasibility on task %d" k
  | Ok s ->
    Alcotest.(check bool) "valid" true (EF.Schedule.is_valid s);
    f "all in col 0: T0" 1. (EF.Schedule.alloc s 0 0);
    f "all in col 0: T1" 1. (EF.Schedule.alloc s 1 0);
    f "all in col 0: T2" 1. (EF.Schedule.alloc s 2 0)

let test_wf_exact_engine () =
  let inst = Support.qinst (Support.uspec ~procs:2 [ ((1, 1), 1); ((3, 1), 2) ]) in
  match EQ.Water_filling.build inst [| Q.of_int 1; Q.of_int 2 |] with
  | Error k -> Alcotest.failf "unexpected infeasibility on task %d" k
  | Ok s ->
    Alcotest.(check bool) "strictly valid" true (EQ.Schedule.is_valid ~exact:true s);
    Alcotest.(check string) "T1 col1 alloc exactly 2" "2" (Q.to_string (EQ.Schedule.alloc s 1 1))

(* ---------- properties ---------- *)

(* Completion times that are certainly feasible: the ones of a greedy
   schedule for a random order. *)
let gen_with_greedy_times =
  let open QCheck2.Gen in
  let* spec = Support.gen_spec `Uniform in
  let* seed = int_bound 1_000_000 in
  return (spec, seed)

let prop_theorem8_reconstruct =
  QCheck2.Test.make ~name:"WF rebuilds any greedy schedule from its times (Thm 8)" ~count:300
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_with_greedy_times
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let g = EF.Greedy.run inst sigma in
      let times = EF.Schedule.completion_times g in
      match EF.Water_filling.build inst times with
      | Error _ -> false
      | Ok s ->
        EF.Schedule.is_valid s
        &&
        (* completion times preserved *)
        Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) (EF.Schedule.completion_times s) times)

let prop_lemma3_heights =
  QCheck2.Test.make ~name:"WF heights are non-increasing (Lemma 3)" ~count:300
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_with_greedy_times
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let g = EF.Greedy.run inst sigma in
      match EF.Water_filling.build inst (EF.Schedule.completion_times g) with
      | Error _ -> false
      | Ok s ->
        let h = EF.Water_filling.column_heights s in
        (* Compare consecutive positive-length columns only: a
           zero-length column (simultaneous completions) carries no
           allocation and its height is trivially 0. *)
        let ok = ref true in
        let last = ref None in
        for j = 0 to n - 1 do
          if EF.Schedule.column_length s j > 1e-12 then begin
            (match !last with Some prev when h.(j) > prev +. 1e-6 -> ok := false | _ -> ());
            last := Some h.(j)
          end
        done;
        !ok)

let prop_normalize_idempotent =
  QCheck2.Test.make ~name:"normalization preserves times and is idempotent" ~count:200
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_with_greedy_times
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let g = EF.Greedy.run inst sigma in
      let s1 = EF.Water_filling.normalize g in
      let s2 = EF.Water_filling.normalize s1 in
      let close a b = Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-6) a b in
      close (EF.Schedule.completion_times g) (EF.Schedule.completion_times s1)
      && close s1.EF.Types.finish s2.EF.Types.finish
      && Array.for_all2 (fun r1 r2 -> close r1 r2) (EF.Schedule.dense_alloc s1) (EF.Schedule.dense_alloc s2))

let prop_theorem9_changes =
  QCheck2.Test.make ~name:"WF has at most n allocation changes (Thm 9)" ~count:300
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_with_greedy_times
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let g = EF.Greedy.run inst sigma in
      match EF.Water_filling.build inst (EF.Schedule.completion_times g) with
      | Error _ -> false
      | Ok s -> EF.Preemption.total_changes s <= n)

let prop_wf_monotone_in_times =
  QCheck2.Test.make ~name:"stretching completion times preserves feasibility" ~count:200
    ~print:(fun (s, _) -> Support.print_spec s)
    gen_with_greedy_times
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let sigma = EF.Orderings.random (Rng.create seed) n in
      let g = EF.Greedy.run inst sigma in
      let times = EF.Schedule.completion_times g in
      let stretched = Array.map (fun t -> t *. 1.5 +. 0.25) times in
      EF.Water_filling.feasible inst stretched)

(* Independent feasibility oracle for fixed completion times: a pure LP
   over the x_{i,j} (columns fixed), solved by the simplex. Theorem 8
   says WF accepts exactly when this LP is feasible. *)
let lp_feasible (inst : EF.Types.instance) (times : float array) : bool =
  let module Sx = Mwct_simplex.Simplex.Make (Mwct_field.Field.Float_field) in
  let n = Array.length times in
  let order = EF.Schedule.sorted_order times in
  let finish = Array.map (fun i -> times.(i)) order in
  let pos = Array.make n 0 in
  Array.iteri (fun j i -> pos.(i) <- j) order;
  let len j = finish.(j) -. (if j = 0 then 0. else finish.(j - 1)) in
  let p = Sx.create () in
  let x = Array.init n (fun i -> Array.init (pos.(i) + 1) (fun _ -> Sx.add_var p)) in
  for j = 0 to n - 1 do
    let terms = ref [] in
    for i = 0 to n - 1 do
      if j <= pos.(i) then terms := (x.(i).(j), 1.) :: !terms
    done;
    if !terms <> [] then Sx.add_constraint p !terms Sx.Leq (inst.EF.Types.procs *. len j);
    for i = 0 to n - 1 do
      if j <= pos.(i) then
        Sx.add_constraint p [ (x.(i).(j), 1.) ] Sx.Leq (EF.Instance.effective_delta inst i *. len j)
    done
  done;
  for i = 0 to n - 1 do
    let terms = List.init (pos.(i) + 1) (fun j -> (x.(i).(j), 1.)) in
    Sx.add_constraint p terms Sx.Eq inst.EF.Types.tasks.(i).EF.Types.volume
  done;
  Sx.set_objective p [];
  match Sx.solve p with Sx.Optimal _ -> true | Sx.Infeasible | Sx.Unbounded -> false

let prop_theorem8_equals_lp_feasibility =
  QCheck2.Test.make ~name:"Theorem 8: WF feasibility = LP feasibility (random times)" ~count:250
    ~print:(fun (s, _) -> Support.print_spec s)
    QCheck2.Gen.(pair (Support.gen_spec ~max_procs:5 ~max_n:5 `Uniform) (int_bound 1_000_000))
    (fun (spec, seed) ->
      let inst = Support.finst spec in
      let n = Array.length inst.EF.Types.tasks in
      let rng = Rng.create seed in
      (* Random times around the makespan scale: a mix of feasible and
         infeasible vectors. *)
      let t_star = EF.Makespan.optimal inst in
      let times =
        Array.init n (fun _ -> t_star *. (0.3 +. (1.4 *. float_of_int (Rng.dyadic rng ~den:32) /. 32.)))
      in
      let wf = EF.Water_filling.feasible inst times in
      let lp = lp_feasible inst times in
      (* Guard against borderline float disagreements: retry the claim
         only when the vectors are clearly on one side. *)
      wf = lp
      ||
      (* borderline: scaled-up times must be feasible for both. *)
      let stretched = Array.map (fun t -> t *. 1.001) times in
      EF.Water_filling.feasible inst stretched = lp_feasible inst stretched)

let prop_exact_matches_float =
  QCheck2.Test.make ~name:"exact WF agrees with float WF on makespan times" ~count:100
    ~print:Support.print_spec (Support.gen_spec `Uniform)
    (fun spec ->
      (* Use the optimal-makespan times: interesting (tight) and exactly
         representable in both engines. *)
      let fi = Support.finst spec and qi = Support.qinst spec in
      let tf = EF.Makespan.optimal fi and tq = EQ.Makespan.optimal qi in
      Float.abs (tf -. Q.to_float tq) < 1e-9
      && EF.Water_filling.feasible fi (Array.map (fun _ -> tf) fi.EF.Types.tasks)
      && EQ.Water_filling.feasible qi (Array.map (fun _ -> tq) qi.EQ.Types.tasks))

let () =
  let q tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests in
  Alcotest.run "water_filling"
    [
      ( "unit",
        [
          Alcotest.test_case "hand example" `Quick test_wf_hand_example;
          Alcotest.test_case "saturation" `Quick test_wf_saturation;
          Alcotest.test_case "infeasible" `Quick test_wf_infeasible;
          Alcotest.test_case "single tight" `Quick test_wf_single_task_tight;
          Alcotest.test_case "equal times" `Quick test_wf_equal_times;
          Alcotest.test_case "exact engine" `Quick test_wf_exact_engine;
        ] );
      ( "properties",
        q
          [
            prop_theorem8_reconstruct;
            prop_lemma3_heights;
            prop_normalize_idempotent;
            prop_theorem9_changes;
            prop_wf_monotone_in_times;
            prop_theorem8_equals_lp_feasibility;
            prop_exact_matches_float;
          ] );
    ]
