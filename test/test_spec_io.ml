(* Spec_io error paths: every malformed input must produce an [Error]
   naming the offending line, matching what the CLI prints before
   exiting with code 2. The happy path is covered by the CLI golden
   tests; this suite pins the diagnostics. *)

module Spec = Mwct_core.Spec
module Spec_io = Mwct_core.Spec_io

let err = Alcotest.(result reject string)

let check_error name input expected =
  Alcotest.check err name (Error expected) (Spec_io.of_string input)

let test_bad_procs () =
  check_error "procs 0" "procs 0\ntask 1 1 1\n" "line 1: procs expects a positive integer";
  check_error "procs -3" "procs -3\n" "line 1: procs expects a positive integer";
  check_error "procs x" "procs x\n" "line 1: procs expects a positive integer"

let test_missing_procs () = check_error "no procs line" "task 1 1 1\n" "missing 'procs' line"

let test_short_task_line () =
  (* a task line with the wrong arity falls through to the
     unknown-directive arm (only the 4-token form is a task) *)
  check_error "task with two fields" "procs 2\ntask 1 1\n" "line 2: unknown directive \"task\"";
  check_error "task with zero delta" "procs 2\ntask 1 1 0\n"
    "line 2: task expects: volume weight delta (delta a positive integer)"

let test_bad_numbers () =
  check_error "volume not a number" "procs 2\ntask x 1 1\n" "line 2: not a number: \"x\"";
  check_error "zero denominator" "procs 2\ntask 1/0 1 1\n" "line 2: not a rational: \"1/0\"";
  check_error "garbage rational" "procs 2\ntask 1/y 1 1\n" "line 2: not a rational: \"1/y\""

let test_semantic_validation () =
  (* parses fine, rejected by Spec.validate *)
  check_error "negative volume" "procs 2\ntask -1 1 1\n" "task 0: volume must be positive";
  check_error "negative weight" "procs 2\ntask 1 -2/3 1\n" "task 0: weight must be positive"

let test_bad_speedup () =
  check_error "speedup before any task" "procs 2\nspeedup 1:1\n" "line 2: speedup before any task";
  check_error "empty speedup" "procs 2\ntask 1 1 2\nspeedup\n"
    "line 3: speedup expects breakpoints: x1:y1 x2:y2 ...";
  check_error "not a breakpoint" "procs 2\ntask 1 1 2\nspeedup 1;1\n"
    "line 3: not a breakpoint (expected x:y): \"1;1\"";
  check_error "duplicate speedup" "procs 2\ntask 1 1 2\nspeedup 2:1\nspeedup 2:1\n"
    "line 4: duplicate speedup for task";
  (* parses fine, rejected by Spec.validate *)
  check_error "non-monotone allocations" "procs 4\ntask 1 1 3\nspeedup 2:1 1:1/2 3:3/2\n"
    "task 0: speedup allocations must be strictly increasing";
  check_error "decreasing rate" "procs 4\ntask 1 1 3\nspeedup 1:1 3:1/2\n"
    "task 0: speedup rate must be non-decreasing";
  check_error "non-concave curve" "procs 4\ntask 1 1 3\nspeedup 1:1/2 3:3\n"
    "task 0: speedup must be concave";
  check_error "superlinear first piece" "procs 4\ntask 1 1 2\nspeedup 1:2 2:3\n"
    "task 0: speedup rate cannot exceed allocation";
  check_error "last breakpoint off delta" "procs 4\ntask 1 1 3\nspeedup 1:1 2:3/2\n"
    "task 0: last speedup breakpoint must equal delta";
  check_error "non-positive breakpoint" "procs 4\ntask 1 1 2\nspeedup 1:0 2:1\n"
    "task 0: speedup breakpoints must be positive"

let test_bad_capacity () =
  check_error "capacity before any task" "procs 2\ncapacity 1\n" "line 2: capacity before any task";
  check_error "zero capacity" "procs 2\ntask 1 1 2\ncapacity 0\n"
    "line 3: capacity expects a positive integer";
  check_error "garbage capacity" "procs 2\ntask 1 1 2\ncapacity x\n"
    "line 3: capacity expects a positive integer";
  check_error "duplicate capacity" "procs 2\ntask 1 1 2\ncapacity 1\ncapacity 1\n"
    "line 4: duplicate capacity for task"

let test_unknown_directive () =
  check_error "unknown directive" "procs 2\nfrobnicate 3\n" "line 2: unknown directive \"frobnicate\""

let test_comments_and_blanks () =
  match Spec_io.of_string "# header\n\nprocs 2 # trailing comment\ntask 1/2 2/3 1\n" with
  | Error e -> Alcotest.fail ("comments should be ignored: " ^ e)
  | Ok spec ->
    Alcotest.(check int) "procs parsed" 2 spec.Spec.procs;
    Alcotest.(check int) "one task" 1 (Array.length spec.Spec.tasks)

let test_roundtrip () =
  let spec =
    Spec.make ~procs:5
      [
        Spec.task ~volume:(Spec.rat 7 3) ~weight:(Spec.rat 2 1) ~delta:4 ();
        Spec.task ~volume:(Spec.rat 1 2) ~weight:(Spec.rat 5 6) ~delta:1 ();
      ]
  in
  match Spec_io.of_string (Spec_io.to_string spec) with
  | Error e -> Alcotest.fail ("roundtrip failed: " ^ e)
  | Ok spec' -> Alcotest.(check string) "to_string . of_string = id" (Spec.to_string spec) (Spec.to_string spec')

let test_roundtrip_speedup () =
  let spec =
    Spec.make ~procs:6
      [
        Spec.task ~volume:(Spec.rat 7 3) ~weight:(Spec.rat 2 1)
          ~speedup:[ (Spec.rat 1 1, Spec.rat 3 4); (Spec.rat 2 1, Spec.rat 5 4); (Spec.rat 4 1, Spec.rat 3 2) ]
          ~delta:4 ();
        Spec.task ~volume:(Spec.rat 1 2) ~capacity:2 ~delta:3 ();
        Spec.task ~volume:(Spec.rat 1 1) ~delta:1 ();
      ]
  in
  (match Spec_io.of_string (Spec_io.to_string spec) with
  | Error e -> Alcotest.fail ("speedup roundtrip failed: " ^ e)
  | Ok spec' ->
    Alcotest.(check string) "to_string . of_string = id" (Spec.to_string spec) (Spec.to_string spec');
    Alcotest.(check bool) "curves survive" true (Spec.has_curves spec'));
  (* a parsed speedup/capacity spec re-renders identically *)
  let text = "procs 6\ntask 7/3 2 4\nspeedup 1:3/4 2:5/4 4:3/2\ntask 1/2 1 3\ncapacity 2\n" in
  match Spec_io.of_string text with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok s -> Alcotest.(check string) "parse . print = id" text (Spec_io.to_string s)

let test_load_missing_file () =
  match Spec_io.load "/no/such/file.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file should be an error"

let () =
  Alcotest.run "spec_io"
    [
      ( "errors",
        [
          Alcotest.test_case "bad procs" `Quick test_bad_procs;
          Alcotest.test_case "missing procs" `Quick test_missing_procs;
          Alcotest.test_case "short task line" `Quick test_short_task_line;
          Alcotest.test_case "bad numbers" `Quick test_bad_numbers;
          Alcotest.test_case "semantic validation" `Quick test_semantic_validation;
          Alcotest.test_case "bad speedup" `Quick test_bad_speedup;
          Alcotest.test_case "bad capacity" `Quick test_bad_capacity;
          Alcotest.test_case "unknown directive" `Quick test_unknown_directive;
        ] );
      ( "io",
        [
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "roundtrip with speedup" `Quick test_roundtrip_speedup;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
        ] );
    ]
