(* Replay the committed regression corpus (test/corpus/*.spec) through
   the differential driver: every registry solver against every
   applicable oracle, on both engines.  Any counterexample `mwct fuzz`
   finds and we fix should land here so the failure can never return.

   The corpus also pins the scoping discovery behind Theorems 9/10:
   [wdeq-thm9-boundary.spec] is an instance where WDEQ's event-driven
   completion-time vector genuinely needs n+1 allocation changes, which
   is why the counting oracles restrict the sharp bounds to offline
   completion-time vectors (and Skip on WDEQ/DEQ instead of Fail). *)

open Test_support
module EQ = Support.EQ
module D = Mwct_check.Differential
module Oracle = Mwct_check.Oracle
module Spec_io = Mwct_core.Spec_io

(* Under `dune runtest` the cwd is the test directory; under
   `dune exec` it is the project root. *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".spec")
  |> List.sort compare

let load name =
  match Spec_io.load (Filename.concat corpus_dir name) with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "%s: %s" name e

let test_replay name () =
  let verdicts = D.run_spec D.default_config (load name) in
  Alcotest.(check bool) "produced verdicts" true (verdicts <> []);
  match D.failures verdicts with
  | [] -> ()
  | fs ->
      Alcotest.failf "%s: %d failing verdicts:\n%s" name (List.length fs)
        (String.concat "\n" (List.map Oracle.verdict_to_string fs))

(* The boundary instance really is beyond the offline bound: exact WDEQ
   needs strictly more than n allocation changes here.  If a future
   change makes this pass, the thm9/thm10 oracles should be re-scoped
   to cover non-clairvoyant solvers again. *)
let test_thm9_boundary () =
  let qi = Support.qinst (load "wdeq-thm9-boundary.spec") in
  let n = Array.length qi.EQ.Types.tasks in
  let s, _ = EQ.Wdeq.wdeq qi in
  let changes = EQ.Preemption.total_changes (EQ.Water_filling.normalize s) in
  Alcotest.(check bool)
    (Printf.sprintf "WDEQ needs > n allocation changes (%d for n=%d)" changes n)
    true (changes > n)

let () =
  let replays =
    List.map
      (fun f -> Alcotest.test_case f `Quick (test_replay f))
      (corpus_files ())
  in
  Alcotest.run "corpus"
    [
      ("replay", replays);
      ( "boundaries",
        [ Alcotest.test_case "thm9 offline scoping is necessary" `Quick test_thm9_boundary ] );
    ]
